"""Tests for the prefix-cache subsystem (repro.serving.prefix).

Four layers of coverage:

1. **Store unit tests** — refcounted acquire/release, hit/miss/eviction
   accounting, LRU-by-release eviction order, copy-on-write whole-block
   rounding, misuse errors (length drift, over-release).
2. **Accounting invariants** — a randomized exerciser drives a
   ``PrefixStore`` plus private allocations through thousands of mixed
   operations and asserts pool-level conservation after every step:
   ``used == sum(private holdings) + sum(unique resident prefix blocks)``.
3. **Engine integration** — zero-sharing runs are digest-identical to
   ``prefix_caching=False`` per scheduler x router (the prefix gate),
   sharing runs hit the cache and re-attach after preemption.
4. **The fleet gate** — under a high-sharing multi-tenant workload,
   ``prefix-affinity`` routing plus copy-on-write sharing must beat
   ``kv-aware`` without sharing on *both* fleet preemptions and
   throughput, across every seed.
"""

import dataclasses
import random

import pytest

from repro.e2e import ModelConfig
from repro.serving import (
    ClusterSimulator,
    KvBlockManager,
    PrefixAffinityRouter,
    PrefixStore,
    ROUTERS,
    ReplicaSnapshot,
    Request,
    SCHEDULERS,
    ServingSimulator,
    prefix_shared_workload,
)
from repro.serving.memory import blocks_for_tokens

TINY_DENSE = ModelConfig(
    name="tiny-dense",
    num_layers=2,
    hidden_size=256,
    num_heads=4,
    kv_len=256,
    head_dim=64,
    dense_ffn_layers=2,
    ffn_intermediate=512,
    weight_dtype="fp16",
    tensor_parallel=1,
)


def _strip_prefixes(requests):
    """The identical traffic with every cache identity removed."""
    return [
        dataclasses.replace(r, prefix_id=None, prefix_tokens=0) for r in requests
    ]


# --------------------------------------------------------------------------- #
# PrefixStore unit tests
# --------------------------------------------------------------------------- #
def test_store_miss_then_hits_share_blocks():
    manager = KvBlockManager(total_blocks=32, block_tokens=16)
    store = PrefixStore(manager)
    assert store.acquire("p", 64) == 64  # miss: 4 whole blocks allocated
    assert (store.misses, store.hits) == (1, 0)
    assert manager.used_blocks == 4 and store.referenced_blocks == 4
    assert store.acquire("p", 64) == 64  # hit: no new blocks
    assert store.acquire("p", 64) == 64
    assert (store.misses, store.hits) == (1, 2)
    assert manager.used_blocks == 4  # still stored once
    assert store.refcount("p") == 3
    assert store.blocks_saved == 8  # two hits x 4 blocks each
    assert store.hit_rate == pytest.approx(2 / 3)


def test_store_partial_tail_block_is_private():
    manager = KvBlockManager(total_blocks=32, block_tokens=16)
    store = PrefixStore(manager)
    # 70 tokens = 4 whole blocks + a 6-token tail: only the whole blocks
    # are shared (the tail is the request's copy-on-write copy).
    assert store.shared_block_tokens(70) == 64
    assert store.acquire("p", 70) == 64
    assert manager.used_blocks == 4
    # A prefix shorter than one block shares nothing and stores nothing.
    assert store.acquire("tiny", 15) == 0
    assert store.entry_count == 1 and manager.used_blocks == 4


def test_store_release_caches_then_reacquire_hits():
    manager = KvBlockManager(total_blocks=32, block_tokens=16)
    store = PrefixStore(manager)
    store.acquire("p", 64)
    store.release("p")
    # Zero refcount: still resident (cached), blocks now reclaimable.
    assert store.entry_count == 1
    assert store.refcount("p") == 0
    assert store.referenced_blocks == 0 and store.reclaimable_blocks == 4
    assert manager.used_blocks == 4
    # Re-attach is a hit, not a second allocation.
    assert store.acquire("p", 64) == 64
    assert store.hits == 1 and store.misses == 1
    assert store.referenced_blocks == 4 and store.reclaimable_blocks == 0


def test_store_eviction_is_lru_by_release_order():
    manager = KvBlockManager(total_blocks=12, block_tokens=16)
    store = PrefixStore(manager)
    for key in ("a", "b", "c"):
        store.acquire(key, 64)
    # Release in the order b, a, c: eviction must reclaim b first.
    for key in ("b", "a", "c"):
        store.release(key)
    assert manager.free_blocks == 0 and store.reclaimable_blocks == 12
    store.ensure_free(4)
    assert store.refcount("b") == 0 and "b" not in store.resident_tokens()
    assert set(store.resident_tokens()) == {"a", "c"}
    assert store.evictions == 1 and manager.free_blocks == 4
    store.ensure_free(8)
    assert set(store.resident_tokens()) == {"c"}
    assert store.evictions == 2


def test_store_never_evicts_referenced_entries():
    manager = KvBlockManager(total_blocks=8, block_tokens=16)
    store = PrefixStore(manager)
    store.acquire("pinned", 64)
    store.ensure_free(8)  # nothing reclaimable: a no-op, not an eviction
    assert store.entry_count == 1 and store.evictions == 0
    assert manager.free_blocks == 4


def test_store_misuse_raises():
    manager = KvBlockManager(total_blocks=32, block_tokens=16)
    store = PrefixStore(manager)
    store.acquire("p", 64)
    # A prefix id hashes the content, so its length cannot drift.
    with pytest.raises(ValueError, match="shared tokens"):
        store.acquire("p", 96)
    store.release("p")
    # Releasing a cached (refcount-0) or unknown prefix is a caller bug.
    with pytest.raises(ValueError, match="refcount would go negative"):
        store.release("p")
    with pytest.raises(ValueError, match="matching acquire"):
        store.release("never-acquired")


def test_store_resident_vs_referenced_token_views():
    manager = KvBlockManager(total_blocks=32, block_tokens=16)
    store = PrefixStore(manager)
    store.acquire("live", 64)
    store.acquire("cached", 32)
    store.release("cached")
    # The router's affinity view sees everything resident; the admission
    # accounting view sees only pinned (referenced) entries.
    assert store.resident_tokens() == {"live": 64, "cached": 32}
    assert store.referenced_tokens() == {"live": 64}


# --------------------------------------------------------------------------- #
# Satellite regressions: manager shrink bug, view fields
# --------------------------------------------------------------------------- #
def test_allocate_refuses_to_shrink_a_holding():
    manager = KvBlockManager(total_blocks=16, block_tokens=16)
    manager.allocate(0, 64)  # 4 blocks
    with pytest.raises(ValueError, match="shrink"):
        manager.allocate(0, 16)
    # The failed call must not have corrupted the accounting.
    assert manager.held(0) == 4 and manager.used_blocks == 4
    # Re-allocating the unchanged target and growing both still work.
    assert manager.allocate(0, 64) == 0
    assert manager.allocate(0, 65) == 1


def test_memory_view_exposes_used_and_peak():
    manager = KvBlockManager(total_blocks=16, block_tokens=16)
    manager.allocate(0, 96)  # 6 blocks
    manager.allocate(1, 32)  # 2 blocks
    manager.release(0)
    view = manager.view()
    assert view.used_blocks == 2
    assert view.peak_used_blocks == 8
    assert view.free_blocks == 14
    assert view.resident_prefixes == {}


def test_admission_blocks_discounts_resident_prefixes():
    from repro.serving.memory import KvMemoryView

    request = Request(
        request_id=0,
        arrival_ms=0.0,
        prompt_tokens=100,
        output_tokens=8,
        slo_ms=1e6,
        prefix_id="p",
        prefix_tokens=70,
    )
    base = dict(block_tokens=16, total_blocks=64, free_blocks=64)
    # Prefix resident (4 whole blocks = 64 tokens): charge only the
    # private suffix (100 + 1 - 64 = 37 tokens -> 3 blocks).
    resident = KvMemoryView(**base, resident_prefixes={"p": 64})
    assert resident.admission_blocks(request) == 3
    # Not resident: shared + private = blocks_for(prompt + 1), exactly the
    # pre-prefix arithmetic.
    absent = KvMemoryView(**base)
    assert absent.admission_blocks(request) == 4 + 3
    assert absent.admission_blocks(request) == absent.blocks_for(101)
    # No prefix: unchanged arithmetic.
    plain = dataclasses.replace(request, prefix_id=None, prefix_tokens=0)
    assert absent.admission_blocks(plain) == absent.blocks_for(101)


def test_request_prefix_validation():
    common = dict(request_id=0, arrival_ms=0.0, prompt_tokens=32, output_tokens=4, slo_ms=1e4)
    with pytest.raises(ValueError):
        Request(**common, prefix_id="p", prefix_tokens=0)  # id without span
    with pytest.raises(ValueError):
        Request(**common, prefix_id="p", prefix_tokens=33)  # span > prompt
    with pytest.raises(ValueError):
        Request(**common, prefix_tokens=8)  # span without id
    ok = Request(**common, prefix_id="p", prefix_tokens=32)
    assert ok.prefix_tokens == 32


# --------------------------------------------------------------------------- #
# Randomized accounting invariants
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(4))
def test_randomized_store_invariants(seed):
    """Conservation under a random op mix: the pool's used blocks always
    equal the private holdings plus each resident prefix counted once."""
    rng = random.Random(seed)
    block_tokens = 16
    manager = KvBlockManager(total_blocks=64, block_tokens=block_tokens)
    store = PrefixStore(manager)
    keys = [f"prefix-{i}" for i in range(6)]
    key_tokens = {key: block_tokens * rng.randint(1, 3) for key in keys}
    attached = {key: 0 for key in keys}  # our model of the refcounts
    private = {}  # request id -> tokens held privately
    next_rid = 0

    def check():
        private_blocks = sum(
            blocks_for_tokens(tokens, block_tokens) for tokens in private.values()
        )
        shared_blocks = sum(
            store.resident_tokens()[key] // block_tokens
            for key in store.resident_tokens()
        )
        assert manager.used_blocks == private_blocks + shared_blocks
        assert store.resident_blocks == shared_blocks
        assert manager.free_blocks == manager.total_blocks - manager.used_blocks
        for key in keys:
            assert store.refcount(key) == attached[key] >= 0
            if attached[key]:
                assert key in store.referenced_tokens()

    for _ in range(2000):
        op = rng.random()
        if op < 0.35:  # attach a request to a random prefix
            key = rng.choice(keys)
            try:
                store.acquire(key, key_tokens[key])
            except RuntimeError:
                pass  # pool genuinely full even after eviction
            else:
                attached[key] += 1
        elif op < 0.6 and any(attached.values()):  # detach
            key = rng.choice([k for k in keys if attached[k]])
            store.release(key)
            attached[key] -= 1
        elif op < 0.8:  # a private allocation (a running request's blocks)
            tokens = rng.randint(1, 64)
            store.ensure_free(blocks_for_tokens(tokens, block_tokens))
            try:
                manager.allocate(next_rid, tokens)
            except RuntimeError:
                pass
            else:
                private[next_rid] = tokens
                next_rid += 1
        elif op < 0.9 and private:  # finish a private request
            rid = rng.choice(list(private))
            manager.release(rid)
            del private[rid]
        else:  # pressure: force evictions of cached entries
            store.ensure_free(rng.randint(1, manager.total_blocks))
        check()
    # Releases stay balanced: every key we believe is detached refuses
    # another release (idempotence guard), every attached one accepts it.
    for key in keys:
        if attached[key] == 0 and store.refcount(key) == 0:
            with pytest.raises(ValueError):
                store.release(key)


# --------------------------------------------------------------------------- #
# Workload generator
# --------------------------------------------------------------------------- #
def test_prefix_workload_is_deterministic_and_structured():
    first = prefix_shared_workload(num_requests=40, num_tenants=3, seed=7)
    second = prefix_shared_workload(num_requests=40, num_tenants=3, seed=7)
    assert first == second
    assert prefix_shared_workload(num_requests=40, num_tenants=3, seed=8) != first
    # Full sharing: every request declares the same per-tenant prefix.
    assert all(r.prefix_id is not None for r in first)
    ids = {r.prefix_id for r in first}
    assert 1 <= len(ids) <= 3  # one id per tenant, stable across requests
    prefix_tokens = {r.prefix_tokens for r in first}
    assert prefix_tokens == {256 + 128}  # system + template defaults
    assert all(r.prompt_tokens > r.prefix_tokens for r in first)


def test_prefix_workload_shared_fraction_only_flips_identity():
    shared = prefix_shared_workload(num_requests=50, shared_fraction=1.0, seed=3)
    unshared = prefix_shared_workload(num_requests=50, shared_fraction=0.0, seed=3)
    assert all(r.prefix_id is None and r.prefix_tokens == 0 for r in unshared)
    # Identical traffic otherwise: same arrivals, prompts, outputs, SLOs.
    assert _strip_prefixes(shared) == unshared


# --------------------------------------------------------------------------- #
# Engine integration: the prefix gate and cache behavior
# --------------------------------------------------------------------------- #
def _tight_budget(requests, slack=8):
    footprint = max(
        blocks_for_tokens(r.prompt_tokens + r.output_tokens) for r in requests
    )
    return max(150, footprint + slack)


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_zero_sharing_is_digest_identical_per_scheduler(scheduler):
    """The prefix gate, replica level: with no shared prefixes declared,
    prefix caching on/off and prefix identity present/stripped all take
    the exact pre-prefix code path."""
    workload = prefix_shared_workload(
        num_requests=48, rate_rps=2000.0, mean_output_tokens=32, shared_fraction=0.0, seed=1
    )
    budget = _tight_budget(workload)

    def run(requests, prefix_caching):
        sim = ServingSimulator(
            TINY_DENSE,
            scheduler=scheduler,
            max_batch_size=8,
            kv_budget_blocks=budget,
            prefix_caching=prefix_caching,
        )
        return sim.simulate(requests, workload="prefix-shared")

    baseline = run(_strip_prefixes(workload), prefix_caching=False)
    for requests, caching in [
        (workload, True),
        (workload, False),
        (_strip_prefixes(workload), True),
    ]:
        report = run(requests, caching)
        assert report.digest() == baseline.digest()
        assert report.prefix_hits == 0 and report.prefix_misses == 0


@pytest.mark.parametrize("router", sorted(ROUTERS))
def test_zero_sharing_cluster_is_digest_identical_per_router(router):
    workload = prefix_shared_workload(
        num_requests=48, rate_rps=2000.0, mean_output_tokens=32, shared_fraction=0.0, seed=2
    )
    budget = _tight_budget(workload)

    def run(prefix_caching):
        cluster = ClusterSimulator(
            TINY_DENSE,
            replicas=2,
            router=router,
            max_batch_size=8,
            kv_budget_blocks=budget,
            prefix_caching=prefix_caching,
        )
        return cluster.simulate(workload, workload="prefix-shared")

    assert run(True).digest() == run(False).digest()


def test_sharing_run_hits_the_cache_and_digests_stably():
    workload = prefix_shared_workload(num_requests=64, rate_rps=2000.0, seed=4)

    def run():
        sim = ServingSimulator(
            TINY_DENSE,
            max_batch_size=8,
            kv_budget_blocks=_tight_budget(workload),
        )
        return sim.simulate(workload, workload="prefix-shared")

    first, second = run(), run()
    assert first.digest() == second.digest()
    assert first.prefix_misses >= 1  # each tenant's prefix stored once
    assert first.prefix_hits > first.prefix_misses
    assert first.prefix_hit_rate > 0.5
    assert first.prefix_blocks_saved > 0
    assert first.prefix_resident_peak >= 1


def test_preempted_request_reattaches_to_resident_prefix():
    """Under pressure the engine preempts; victims detach from their
    prefix and readmission re-attaches — visible as hits in excess of
    what admissions alone could produce."""
    workload = prefix_shared_workload(
        num_requests=96,
        rate_rps=4000.0,
        num_tenants=4,
        system_prompt_tokens=192,
        tenant_template_tokens=64,
        mean_unique_tokens=32,
        mean_output_tokens=128,
        seed=0,
    )
    sim = ServingSimulator(
        TINY_DENSE,
        max_batch_size=8,
        kv_budget_blocks=_tight_budget(workload),
    )
    report = sim.simulate(workload, workload="prefix-shared")
    assert report.preemptions > 0
    # Every request declared a prefix, so lookups = admissions; with
    # preemption readmits, admissions (and thus lookups) exceed the
    # request count while misses stay at the tenant-prefix count.
    lookups = report.prefix_hits + report.prefix_misses
    assert lookups > len(workload)
    assert report.prefix_misses <= 4 + report.prefix_evictions


# --------------------------------------------------------------------------- #
# Router
# --------------------------------------------------------------------------- #
def _snapshot(replica_id, resident=None, unreserved=100, load=0, preemptions=0):
    return ReplicaSnapshot(
        replica_id=replica_id,
        now_ms=0.0,
        waiting=load,
        running=0,
        max_batch_size=8,
        kv_total_blocks=200,
        kv_free_blocks=200,
        kv_reserved_blocks=200 - unreserved,
        preemptions=preemptions,
        finished=0,
        resident_prefixes=resident or {},
    )


def test_prefix_affinity_routes_to_the_holder():
    router = PrefixAffinityRouter()
    router.reset(3)
    request = Request(
        request_id=0, arrival_ms=0.0, prompt_tokens=64, output_tokens=4,
        slo_ms=1e4, prefix_id="p", prefix_tokens=48,
    )
    snapshots = [
        _snapshot(0, unreserved=150),  # roomiest, but not a holder
        _snapshot(1, resident={"p": 32}, load=5),
        _snapshot(2, resident={"p": 48}, load=9),  # longest resident span
    ]
    assert router.route(request, snapshots) == 2
    # Among equal spans, kv-aware's ranking breaks the tie.
    snapshots[1] = _snapshot(1, resident={"p": 48}, unreserved=120, load=5)
    assert router.route(request, snapshots) == 1


def test_prefix_affinity_falls_back_to_kv_aware():
    from repro.serving import KvAwareRouter

    affinity, kv = PrefixAffinityRouter(), KvAwareRouter()
    affinity.reset(3)
    kv.reset(3)
    snapshots = [
        _snapshot(0, unreserved=80),
        _snapshot(1, unreserved=120),
        _snapshot(2, unreserved=90),
    ]
    # No prefix declared -> identical to kv-aware.
    plain = Request(request_id=0, arrival_ms=0.0, prompt_tokens=64, output_tokens=4, slo_ms=1e4)
    assert affinity.route(plain, snapshots) == kv.route(plain, snapshots)
    # Prefix declared but resident nowhere -> identical to kv-aware.
    cold = dataclasses.replace(plain, prefix_id="p", prefix_tokens=48)
    assert affinity.route(cold, snapshots) == kv.route(cold, snapshots)


# --------------------------------------------------------------------------- #
# The fleet gate
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(8))
def test_prefix_affinity_with_sharing_beats_kv_aware_without(seed):
    """The acceptance gate: on a high-sharing multi-tenant day, prefix
    sharing + affinity routing must strictly win on both fleet
    preemptions and throughput over kv-aware with caching disabled —
    the same traffic, the same budget, every seed."""
    workload = prefix_shared_workload(
        num_requests=96,
        rate_rps=4000.0,
        num_tenants=4,
        system_prompt_tokens=192,
        tenant_template_tokens=64,
        mean_unique_tokens=32,
        mean_output_tokens=128,
        seed=seed,
    )
    budget = _tight_budget(workload)

    def run(router, prefix_caching):
        cluster = ClusterSimulator(
            TINY_DENSE,
            replicas=2,
            router=router,
            scheduler="fcfs",
            max_batch_size=8,
            kv_budget_blocks=budget,
            prefix_caching=prefix_caching,
        )
        return cluster.simulate(workload, workload="prefix-shared")

    shared = run("prefix-affinity", prefix_caching=True)
    baseline = run("kv-aware", prefix_caching=False)
    assert shared.preemptions < baseline.preemptions, (
        f"seed {seed}: sharing preempted {shared.preemptions}x vs "
        f"baseline {baseline.preemptions}x"
    )
    assert shared.throughput_tok_s > baseline.throughput_tok_s, (
        f"seed {seed}: sharing {shared.throughput_tok_s:.0f} tok/s vs "
        f"baseline {baseline.throughput_tok_s:.0f} tok/s"
    )
    assert shared.prefix_hit_rate > 0.5
    assert baseline.prefix_hits == 0 and baseline.prefix_misses == 0
