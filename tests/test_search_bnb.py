"""Branch-and-bound instruction selection: equivalence with the flat
enumeration, smem subproblem memoization soundness, and search stats.

The branch-and-bound search (`InstructionSelector.best`) must return a
candidate bit-identical to the pre-change exhaustive reference
(`best_exhaustive`) for every kernel family and every search budget, while
doing strictly less work.  The memoized shared-memory subproblems must
never change a synthesized plan.
"""

import pytest

from repro.compiler import compile_kernel
from repro.instructions.registry import instruction_set
from repro.kernels.attention import build_mha_decoding
from repro.kernels.fp8_gemm import build_fp8_blockwise_gemm
from repro.kernels.gemm import GemmConfig, build_fp16_gemm
from repro.kernels.mamba import build_selective_scan
from repro.kernels.moe import build_moe_gemm
from repro.pipeline import CompileCache
from repro.sim.arch import DEFAULT_ARCH, get_arch
from repro.synthesis import smem_solver
from repro.synthesis.search import InstructionSelector
from repro.synthesis.smem_solver import (
    SmemSynthesisError,
    clear_smem_cache,
    synthesize_smem_layout,
)
from repro.synthesis.tv_solver import ThreadValueSolver

KERNEL_FAMILIES = [
    ("gemm", lambda: build_fp16_gemm(256, 256, 512, GemmConfig(bm=128, bn=128, bk=32)), "a100"),
    ("fp8_gemm", lambda: build_fp8_blockwise_gemm(128, 128, 128), "h100"),
    ("attention", lambda: build_mha_decoding(128, 64, 2, 1), "a100"),
    ("mamba", lambda: build_selective_scan(128, 128, 1), "h100"),
    ("moe", lambda: build_moe_gemm(16, 128, 128), "h100"),
]
FAMILY_IDS = [f[0] for f in KERNEL_FAMILIES]


def make_selector(build, arch, max_candidates):
    gpu = get_arch(arch)
    iset = instruction_set(gpu.sm_arch)
    program = build()
    tv = ThreadValueSolver(program, iset).solve()
    return InstructionSelector(program, tv, iset, max_candidates=max_candidates)


# --------------------------------------------------------------------------- #
# Equivalence: branch-and-bound == flat enumeration
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name,build,arch", KERNEL_FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("max_candidates", [4, 8, 64, 256])
def test_bnb_matches_exhaustive(name, build, arch, max_candidates):
    """Same winning assignment and same total cycles at every search budget,
    including budgets that truncate the tree mid-subtree."""
    exhaustive_sel = make_selector(build, arch, max_candidates)
    exhaustive = exhaustive_sel.best_exhaustive()
    bnb_sel = make_selector(build, arch, max_candidates)
    bnb = bnb_sel.best()

    assert bnb.named_assignment(bnb_sel.program) == exhaustive.named_assignment(
        exhaustive_sel.program
    )
    assert bnb.total_cycles == exhaustive.total_cycles
    # Both searches account for the same window of leaf equivalents.
    assert bnb_sel.candidates_explored == exhaustive_sel.candidates_explored


@pytest.mark.parametrize("name,build,arch", KERNEL_FAMILIES, ids=FAMILY_IDS)
def test_bnb_never_does_more_full_evaluations(name, build, arch):
    """The pruner is a pure win: full leaf evaluations (smem + cost model)
    never exceed the flat enumeration's, and the smem memo always fires."""
    exhaustive_sel = make_selector(build, arch, 64)
    exhaustive_sel.best_exhaustive()
    bnb_sel = make_selector(build, arch, 64)
    bnb_sel.best()
    assert bnb_sel.stats.leaves_evaluated <= exhaustive_sel.stats.leaves_evaluated
    assert bnb_sel.stats.smem_solves <= exhaustive_sel.stats.smem_solves
    if bnb_sel.program.shared_tensors():
        assert (
            bnb_sel.stats.subproblems_memoized + bnb_sel.stats.smem_solves > 0
        )


# --------------------------------------------------------------------------- #
# Property: memoized smem subproblems never change SmemPlan results
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name,build,arch", KERNEL_FAMILIES, ids=FAMILY_IDS)
def test_memoized_smem_subproblems_match_fresh_solves(name, build, arch):
    """For every enumerated assignment and every shared buffer, the plan
    served through the (selector + process-wide) memo layers equals a fresh
    uncached constraint solve."""
    selector = make_selector(build, arch, 16)
    checked = 0
    for assignment in selector.enumerate_assignments():
        for tensor in selector.program.shared_tensors():
            touching = selector._touching[tensor.tensor_id]
            accesses = [
                selector._access_for(copy, assignment[copy.op_id], tensor)
                for copy in touching
            ]
            try:
                fresh = smem_solver._solve_subproblem(tensor, accesses)
            except SmemSynthesisError:
                fresh = None
            plan = selector._plan_for(tensor, assignment)
            if fresh is None:
                assert plan is None
            else:
                assert plan is not None
                assert plan.base_layout == fresh.base_layout
                assert plan.swizzle == fresh.swizzle
                assert plan.conflict_factor == fresh.conflict_factor
                assert [a.copy.op_id for a in plan.accesses] == [
                    a.copy.op_id for a in accesses
                ]
            checked += 1
    if selector.program.shared_tensors():
        assert checked > 0


def test_structural_smem_cache_round_trip():
    """The process-wide structural cache replays plans (and failures)
    identically for equivalent subproblems on distinct tensor objects."""
    selector = make_selector(*KERNEL_FAMILIES[0][1:], 4)
    program = selector.program
    assignment = next(selector.enumerate_assignments())
    tensor = program.shared_tensors()[0]
    accesses = [
        selector._access_for(copy, assignment[copy.op_id], tensor)
        for copy in selector._touching[tensor.tensor_id]
    ]
    clear_smem_cache()
    first = synthesize_smem_layout(tensor, accesses)
    hits, misses, size = smem_solver.smem_cache_info()
    assert (hits, misses) == (0, 1) and size == 1
    second = synthesize_smem_layout(tensor, accesses)
    assert smem_solver.smem_cache_info()[0] == 1
    assert second.base_layout == first.base_layout
    assert second.swizzle == first.swizzle
    assert second.conflict_factor == first.conflict_factor
    # The replayed plan is a fresh object bound to the given tensor, so
    # applying it installs layouts on the right program.
    assert second is not first and second.tensor is tensor


# --------------------------------------------------------------------------- #
# Stats plumbing
# --------------------------------------------------------------------------- #
def test_search_stats_exposed_through_pipeline():
    program = build_fp16_gemm(256, 256, 512, GemmConfig(bm=128, bn=128, bk=32))
    kernel = compile_kernel(
        program, arch="a100", max_candidates=64, cache=CompileCache()
    )
    stats = kernel.pass_stats
    assert stats["instruction-selection.leaves_evaluated"] >= 1
    assert stats["instruction-selection.leaves_pruned"] == kernel.leaves_pruned
    assert (
        stats["instruction-selection.subproblems_memoized"]
        == kernel.subproblems_memoized
    )
    assert kernel.subproblems_memoized > 0
    # Window accounting: evaluated + memo-replayed + pruned leaf equivalents
    # is what candidates_explored has always reported.
    assert kernel.candidates_explored >= kernel.leaves_pruned


def test_replay_evaluates_single_leaf_without_pruning():
    cache = CompileCache()
    build = lambda: build_fp16_gemm(256, 256, 512, GemmConfig(bm=128, bn=128, bk=32))
    compile_kernel(build(), arch="a100", max_candidates=64, cache=cache)
    replay = compile_kernel(build(), arch="a100", max_candidates=64, cache=cache)
    assert replay.cache_hit
    assert replay.candidates_explored == 1
    assert replay.leaves_pruned == 0


def test_tv_solver_defaults_to_canonical_arch():
    program = build_fp16_gemm(64, 64, 64, GemmConfig(bm=64, bn=64, bk=32))
    solver = ThreadValueSolver(program)
    assert solver.instructions.arch == get_arch(DEFAULT_ARCH).sm_arch
