"""Tests for layout constraints and unification (Fig. 10 of the paper)."""

import pytest

from repro.layout import Layout, LayoutConstraint, UnificationError, unify
from repro.layout.constraint import ConstraintMode, StrideVar


def test_vectorized_constraint_structure():
    c = LayoutConstraint.from_vectorized_access((64, 64), 0, 8)
    assert c.tensor_shape == (64, 64)
    known = c.known_modes()
    assert len(known) == 1 and known[0].shape == 8 and known[0].stride == 1


def test_unify_refinement_case_1():
    # Fig. 10 (c) Case 1: an 8-wide and a 2-wide constraint on the same dim.
    c1 = LayoutConstraint.from_vectorized_access((64, 64), 0, 8)
    c2 = LayoutConstraint.from_vectorized_access((64, 64), 0, 2)
    merged = c1.unify(c2)
    shapes = [m.shape for m in merged.dims[0]]
    assert shapes[0] == 2  # refined innermost mode
    assert merged.dims[0][0].stride == 1


def test_unify_conflict_case_2():
    # Fig. 10 (c) Case 2: contiguity demanded along both dimensions fails.
    c1 = LayoutConstraint.from_vectorized_access((64, 64), 0, 8)
    c2 = LayoutConstraint.from_vectorized_access((64, 64), 1, 8)
    with pytest.raises(UnificationError):
        c1.unify(c2)


def test_unify_requires_same_shape():
    c1 = LayoutConstraint.from_vectorized_access((64, 64), 0, 8)
    c2 = LayoutConstraint.from_vectorized_access((32, 64), 0, 8)
    with pytest.raises(UnificationError):
        c1.unify(c2)


def test_materialize_produces_compact_injective_layout():
    c1 = LayoutConstraint.from_vectorized_access((64, 64), 0, 8)
    c2 = LayoutConstraint.from_vectorized_access((64, 64), 0, 2)
    layout = c1.unify(c2).materialize()
    assert layout.is_injective()
    assert layout.cosize() == 64 * 64
    # The vectorization requirement survives materialization.
    assert layout((1, 0)) - layout((0, 0)) == 1


def test_materialize_unconstrained():
    layout = LayoutConstraint.unconstrained((16, 32)).materialize()
    assert layout.is_compact()


def test_from_known_layout_roundtrip():
    base = Layout((16, 32), (1, 16))
    constraint = LayoutConstraint.from_known_layout(base, (16, 32))
    assert constraint.is_fully_known()
    materialized = constraint.materialize()
    for i in range(base.size()):
        assert materialized(i) == base(i)


def test_vector_width_must_divide_extent():
    with pytest.raises(UnificationError):
        LayoutConstraint.from_vectorized_access((12, 64), 0, 8)


def test_unify_many():
    constraints = [
        LayoutConstraint.from_vectorized_access((64, 64), 0, v) for v in (2, 4, 8)
    ]
    merged = unify(constraints)
    assert merged.dims[0][0].stride == 1
    merged.materialize()


def test_stride_var_names_are_unique():
    assert StrideVar().name != StrideVar().name


def test_known_mode_conflict_detected():
    c = LayoutConstraint(
        (8, 8),
        [[ConstraintMode(8, 1)], [ConstraintMode(8, 1)]],
    )
    with pytest.raises(UnificationError):
        c.materialize()
