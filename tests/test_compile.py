"""End-to-end compiler tests: instruction selection, fallback, codegen, timing."""

import pytest

from repro.compiler import compile_kernel
from repro.frontend import KernelBuilder, kernel
from repro.ir import types
from repro.kernels.gemm import GemmConfig, build_fp16_gemm
from repro.kernels.moe import build_moe_gemm
from repro.layout import Layout
from repro.sim.arch import A100, H100, get_arch


def test_gemm_selects_wide_and_collective_instructions():
    program = build_fp16_gemm(128, 128, 256, GemmConfig(bm=128, bn=128, bk=32))
    compiled = compile_kernel(program, arch="a100", max_candidates=16)
    chosen = {op.op_id: instr.name for op_id, instr in compiled.candidate.assignment.items()
              for op in program.copies() if op.op_id == op_id}
    names = set(chosen.values())
    assert any(name.startswith("cp.async") for name in names)
    assert any(name.startswith("ldmatrix") for name in names)
    # Shared-memory layouts were synthesized for every buffer.
    assert len(compiled.candidate.smem_plans) == len(program.shared_tensors())


def test_width_cap_forces_narrow_instructions():
    program = build_fp16_gemm(64, 64, 64, GemmConfig(bm=64, bn=64, bk=32))
    compiled = compile_kernel(program, arch="a100", max_candidates=4,
                              copy_width_cap=lambda c: 4)
    assert all(i.vector_bytes <= 4 for i in compiled.candidate.assignment.values())


def test_narrow_instructions_are_slower():
    wide = compile_kernel(build_fp16_gemm(64, 64, 128, GemmConfig(bm=64, bn=64, bk=32)),
                          arch="a100", max_candidates=8)
    narrow = compile_kernel(build_fp16_gemm(64, 64, 128, GemmConfig(bm=64, bn=64, bk=32)),
                            arch="a100", max_candidates=8, copy_width_cap=lambda c: 2)
    assert narrow.latency_us > wide.latency_us


def test_cost_model_picks_near_optimal_candidate():
    """The Fig. 12 property: the selected candidate is within a small factor
    of the best valid candidate found by exhaustive evaluation."""
    program = build_fp16_gemm(64, 64, 128, GemmConfig(bm=64, bn=64, bk=32))
    compiled = compile_kernel(program, arch="a100", max_candidates=48, keep_alternatives=True)
    best = min(c.total_cycles for c in compiled.alternatives)
    assert compiled.candidate.total_cycles <= best * 1.01


def test_moe_kernels_compile_on_both_dataflows():
    for dataflow in ("hexcute", "triton"):
        program = build_moe_gemm(16, 128, 256, dataflow=dataflow)
        compiled = compile_kernel(program, arch="h100", max_candidates=4)
        assert compiled.latency_us > 0


def test_emitted_source_mentions_layouts_and_instructions():
    program = build_fp16_gemm(64, 64, 64, GemmConfig(bm=64, bn=64, bk=32))
    compiled = compile_kernel(program, arch="a100", max_candidates=4)
    assert "__global__" in compiled.source
    assert "__shared__" in compiled.source
    assert "tv layout" in compiled.source
    assert "mma" in compiled.source
    assert compiled.summary()


def test_timing_scales_with_grid():
    small = compile_kernel(build_fp16_gemm(128, 128, 128, GemmConfig(bm=128, bn=128, bk=32)),
                           arch="a100", max_candidates=4)
    big = compile_kernel(build_fp16_gemm(2048, 2048, 128, GemmConfig(bm=128, bn=128, bk=32)),
                         arch="a100", max_candidates=4)
    assert big.latency_us > small.latency_us


def test_bytes_per_instruction_keys_memory_side_tensor():
    """The Table III/IV metric keys each copy by its *memory-side* tensor:
    a reg->smem store is keyed by the shared destination buffer, never by
    the register fragment (regression test for the dead src/src conditional)."""
    program = build_fp16_gemm(64, 64, 64, GemmConfig(bm=64, bn=64, bk=32))
    compiled = compile_kernel(program, arch="a100", max_candidates=4)
    table = compiled.bytes_per_instruction()

    r2s = [op for op in program.copies() if op.direction == "R2S"]
    assert r2s, "gemm epilogue must stage the accumulator through shared memory"
    for op in r2s:
        assert f"{op.dst.name}:R2S" in table
        assert f"{op.src.name}:R2S" not in table
        assert table[f"{op.dst.name}:R2S"] == compiled.candidate.assignment[op.op_id].vector_bytes
    # Loads out of memory stay keyed by their (memory-side) source.
    for op in program.copies():
        if op.direction in ("G2S", "S2R"):
            assert f"{op.src.name}:{op.direction}" in table


def test_arch_lookup():
    assert get_arch("a100") is A100
    assert get_arch(90) is H100
    assert get_arch(H100) is H100
    with pytest.raises(KeyError):
        get_arch("tpu-v5")


def test_kernel_decorator_compiles():
    @kernel(num_threads=64)
    def scale_kernel(hx, n=64):
        src = hx.global_view("src", types.float16, (n, n), layout=Layout((n, n), (n, 1)))
        dst = hx.global_view("dst", types.float16, (n, n), layout=Layout((n, n), (n, 1)))
        reg = hx.register_tensor(types.float16, (n, n))
        hx.copy(src, reg)
        doubled = hx.elementwise(lambda x: x * 2, reg, fn_name="double")
        hx.copy(doubled, dst)

    compiled = scale_kernel.compile(arch="a100", n=64)
    assert compiled.latency_us > 0
    assert compiled.lines_of_code() > 0
