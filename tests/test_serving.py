"""Tests for the continuous-batching serving subsystem (repro.serving)."""

import dataclasses

import pytest

from repro.e2e import ModelConfig
from repro.pipeline import CompileCache
from repro.serving import (
    ClusterSimulator,
    FcfsScheduler,
    KvAwareRouter,
    KvBlockManager,
    KvMemoryView,
    LeastLoadedRouter,
    MaxBatchScheduler,
    MemoryAwareScheduler,
    PowerOfTwoRouter,
    ROUTERS,
    ReplicaSnapshot,
    Request,
    RequestQueue,
    RoundRobinRouter,
    RunningInfo,
    SCHEDULERS,
    ServingSimulator,
    SloScheduler,
    StepLatencyModel,
    bursty_workload,
    get_router,
    get_scheduler,
    heavy_tail_workload,
    kv_budget_blocks,
    kv_bytes_per_token,
    make_workload,
    percentile,
    shared_step_model,
    simulate_cluster,
    steady_workload,
    weight_bytes,
)
from repro.serving.memory import blocks_for_tokens
from repro.serving.report import RequestMetrics, ServeReport
from repro.serving.scheduler import Scheduler
from repro.serving.step_model import attention_step_us, operator_plan
from repro.sim.arch import get_arch

# Small model configs so the compiles under test stay cheap.
TINY_DENSE = ModelConfig(
    name="tiny-dense",
    num_layers=2,
    hidden_size=256,
    num_heads=4,
    kv_len=256,
    head_dim=64,
    dense_ffn_layers=2,
    ffn_intermediate=512,
    weight_dtype="fp16",
    tensor_parallel=1,
)
TINY_MAMBA = ModelConfig(
    name="tiny-mamba",
    num_layers=2,
    hidden_size=256,
    num_heads=4,
    kv_len=256,
    head_dim=64,
    mamba_layers=1,
    mamba_d_inner=128,
    weight_dtype="fp16",
    tensor_parallel=1,
)


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
def test_workloads_are_seed_deterministic():
    for name in ("steady", "bursty", "heavy-tail"):
        first = make_workload(name, num_requests=20, seed=5)
        second = make_workload(name, num_requests=20, seed=5)
        assert first == second
        assert make_workload(name, num_requests=20, seed=6) != first
        assert len(first) == 20
        assert all(r.prompt_tokens >= 1 and r.output_tokens >= 1 for r in first)


def test_workload_shapes():
    bursty = bursty_workload(num_requests=24, burst_size=8, intra_burst_ms=20.0, seed=1)
    gaps = [b.arrival_ms - a.arrival_ms for a, b in zip(bursty, bursty[1:])]
    # Bursts: most gaps are tiny, a few (between bursts) are large.
    assert max(gaps) > 100.0 and sorted(gaps)[len(gaps) // 2] < 20.0

    tail = heavy_tail_workload(num_requests=200, min_output_tokens=8, seed=2)
    outputs = sorted(r.output_tokens for r in tail)
    assert outputs[0] >= 8
    # A heavy tail: the max output dwarfs the median.
    assert outputs[-1] > 10 * outputs[len(outputs) // 2]

    with pytest.raises(KeyError):
        make_workload("nope")


def test_request_queue_pops_in_arrival_order():
    requests = [
        Request(request_id=2, arrival_ms=50.0, prompt_tokens=8, output_tokens=4, slo_ms=1e4),
        Request(request_id=0, arrival_ms=10.0, prompt_tokens=8, output_tokens=4, slo_ms=1e4),
        Request(request_id=1, arrival_ms=10.0, prompt_tokens=8, output_tokens=4, slo_ms=1e4),
    ]
    queue = RequestQueue(requests)
    assert queue.next_arrival_ms == 10.0
    assert [r.request_id for r in queue.pop_arrived(10.0)] == [0, 1]
    assert queue.next_arrival_ms == 50.0 and len(queue) == 1
    assert queue.pop_arrived(49.9) == []
    assert [r.request_id for r in queue.pop_arrived(1e9)] == [2]

    with pytest.raises(ValueError):
        Request(request_id=0, arrival_ms=0.0, prompt_tokens=0, output_tokens=4, slo_ms=1e4)


# --------------------------------------------------------------------------- #
# Schedulers
# --------------------------------------------------------------------------- #
def _request(rid, arrival, slo=10_000.0):
    return Request(
        request_id=rid, arrival_ms=arrival, prompt_tokens=16, output_tokens=8, slo_ms=slo
    )


def test_fcfs_admits_in_arrival_order():
    waiting = [_request(0, 0.0), _request(1, 1.0), _request(2, 2.0)]
    picked = FcfsScheduler().select(waiting, running=0, free_slots=2, now_ms=5.0, more_arrivals=True)
    assert [r.request_id for r in picked] == [0, 1]


def test_slo_scheduler_prefers_tight_deadlines():
    # Request 1 arrived later but its deadline is much earlier.
    waiting = [_request(0, 0.0, slo=50_000.0), _request(1, 1.0, slo=1_000.0)]
    picked = SloScheduler().select(waiting, running=0, free_slots=1, now_ms=5.0, more_arrivals=True)
    assert [r.request_id for r in picked] == [1]


def test_max_batch_defers_until_full_or_final():
    scheduler = MaxBatchScheduler(max_wait_ms=500.0)
    waiting = [_request(0, 0.0), _request(1, 1.0)]
    # Batch cannot be filled and more traffic is coming: hold.
    assert scheduler.select(waiting, 0, free_slots=4, now_ms=5.0, more_arrivals=True) == []
    # No more arrivals ever: flush.
    assert len(scheduler.select(waiting, 0, free_slots=4, now_ms=5.0, more_arrivals=False)) == 2
    # Enough waiting to fill: admit.
    waiting4 = waiting + [_request(2, 2.0), _request(3, 3.0)]
    assert len(scheduler.select(waiting4, 0, free_slots=4, now_ms=5.0, more_arrivals=True)) == 4
    # A straggler ages past max_wait_ms: forced admission round.
    assert len(scheduler.select(waiting, 0, free_slots=4, now_ms=600.0, more_arrivals=True)) == 2


def test_get_scheduler_resolves_names_and_instances():
    assert isinstance(get_scheduler("fcfs"), FcfsScheduler)
    custom = MaxBatchScheduler(max_wait_ms=10.0)
    assert get_scheduler(custom) is custom
    with pytest.raises(KeyError):
        get_scheduler("round-robin")


# --------------------------------------------------------------------------- #
# Step-latency model
# --------------------------------------------------------------------------- #
def test_bucket_for_rounds_up_and_rejects_oversized_batches():
    model = StepLatencyModel(arch="a100", buckets=(1, 2, 4, 8))
    assert model.bucket_for(1) == 1
    assert model.bucket_for(3) == 4
    assert model.bucket_for(8) == 8
    # A batch above the largest bucket used to be silently clamped to it
    # (timed as batch 8) — now it is an error.
    with pytest.raises(ValueError):
        model.bucket_for(100)
    with pytest.raises(ValueError):
        model.bucket_for(0)
    with pytest.raises(ValueError):
        StepLatencyModel(arch="a100", buckets=())


def test_ensure_bucket_extends_to_the_next_power_of_two():
    model = StepLatencyModel(arch="a100", buckets=(1, 2, 4, 8))
    assert model.ensure_bucket(8) == 8  # already covered: no change
    assert model.buckets == (1, 2, 4, 8)
    assert model.ensure_bucket(100) == 128
    assert model.buckets == (1, 2, 4, 8, 128)
    assert model.bucket_for(100) == 128


def test_simulator_extends_buckets_for_large_max_batch():
    """ServingSimulator(max_batch_size=N) must never be timed at a smaller
    bucket: the constructor extends the step model's bucket set."""
    model = StepLatencyModel(arch="a100", buckets=(1, 2))
    ServingSimulator(TINY_DENSE, arch="a100", max_batch_size=6, step_model=model)
    assert model.buckets == (1, 2, 8)
    # A batch of 6 is evaluated at its own bucket (8) — a fresh memo entry —
    # not silently folded into bucket 2.
    model.step_latency_ms(TINY_DENSE, "hexcute", batch=2)
    misses_before = model.memo_misses
    model.step_latency_ms(TINY_DENSE, "hexcute", batch=6)
    assert model.bucket_for(6) == 8
    assert model.memo_misses == misses_before + 1


def test_operator_plan_resolves_baselines():
    plan = dict((name, backend) for name, _, backend in operator_plan(TINY_MAMBA, "baseline"))
    assert plan["attention"] == "baseline"
    assert plan["mamba_scan"] == "mamba-lib"
    hexcute = dict((name, b) for name, _, b in operator_plan(TINY_MAMBA, "hexcute"))
    assert set(hexcute.values()) == {"hexcute"}


def test_step_model_memoizes_buckets():
    model = StepLatencyModel(arch="a100", buckets=(1, 2, 4, 8))
    first = model.operator_latencies_us(TINY_DENSE, "hexcute", batch=3)
    assert model.memo_misses == 1 and model.memo_hits == 0
    # Same bucket (4): memo hit, identical values.
    again = model.operator_latencies_us(TINY_DENSE, "hexcute", batch=4)
    assert model.memo_hits == 1
    assert again == first
    # Different bucket: a new miss.
    model.operator_latencies_us(TINY_DENSE, "hexcute", batch=8)
    assert model.memo_misses == 2


def test_step_model_parallel_serial_equivalence():
    parallel = StepLatencyModel(arch="a100").operator_latencies_us(
        TINY_DENSE, "hexcute", batch=2, parallel=True
    )
    serial = StepLatencyModel(arch="a100").operator_latencies_us(
        TINY_DENSE, "hexcute", batch=2, parallel=False
    )
    assert parallel == serial
    assert set(parallel) == {"attention", "ffn"}


def test_precompile_warms_cache_and_evaluation_hits_it():
    cache = CompileCache(max_entries=256)
    model = StepLatencyModel(arch="a100", buckets=(1, 2), cache=cache)
    cold = model.precompile(TINY_DENSE)
    assert cold.requests > 0 and cold.compiled > 0 and cold.errors == 0
    assert cold.already_cached == 0
    assert cold.cache_delta["puts"] == cold.compiled

    # A second model over the same cache starts warm: nothing to compile.
    warm = StepLatencyModel(arch="a100", buckets=(1, 2), cache=cache).precompile(TINY_DENSE)
    assert warm.compiled == 0 and warm.already_cached == warm.requests

    # Evaluation afterwards only *hits* the precompiled cache (no new puts).
    puts_before = cache.stats.puts
    latency = model.step_latency_ms(TINY_DENSE, "hexcute", batch=2)
    assert latency > 0
    assert cache.stats.puts == puts_before


def test_head_dim_is_parameterized():
    gpu = get_arch("a100")
    narrow = attention_step_us(gpu, dataclasses.replace(TINY_DENSE, head_dim=64), 4, "baseline")
    wide = attention_step_us(gpu, dataclasses.replace(TINY_DENSE, head_dim=128), 4, "baseline")
    assert narrow < wide  # half the head dim moves half the KV bytes


# --------------------------------------------------------------------------- #
# Simulator
# --------------------------------------------------------------------------- #
def _simulate_tiny(scheduler="fcfs", seed=3, **kwargs):
    workload = steady_workload(
        num_requests=12, rate_rps=50.0, mean_prompt_tokens=64, mean_output_tokens=12, seed=seed
    )
    sim = ServingSimulator(
        TINY_DENSE,
        backend="hexcute",
        scheduler=scheduler,
        arch="a100",
        max_batch_size=4,
        **kwargs,
    )
    return sim.simulate(workload, workload="steady")


def test_simulator_completes_every_request_deterministically():
    first = _simulate_tiny()
    second = _simulate_tiny()
    assert first.digest() == second.digest()
    assert first.num_requests == 12
    assert first.steps > 0 and first.duration_ms > 0
    assert first.throughput_tok_s > 0
    assert 0.0 <= first.slo_attainment <= 1.0
    assert 1.0 <= first.mean_batch_size <= 4.0
    for metrics in first.requests:
        assert metrics.scheduled_ms >= metrics.arrival_ms
        assert metrics.first_token_ms > metrics.scheduled_ms
        assert metrics.finish_ms >= metrics.first_token_ms
        assert metrics.latency_ms > 0 and metrics.ttft_ms > 0


def test_simulator_schedulers_produce_valid_but_distinct_traces():
    fcfs = _simulate_tiny("fcfs")
    maxb = _simulate_tiny("max-batch")
    assert fcfs.num_requests == maxb.num_requests == 12
    # max-batch trades queueing delay for occupancy.
    assert maxb.mean_batch_size >= fcfs.mean_batch_size
    assert fcfs.digest() != maxb.digest()


def test_max_batch_straggler_admitted_within_max_wait():
    """An idle engine must not sleep past max-batch's max_wait_ms deferral.

    Two requests arrive 10 s apart: the first can never fill the batch, so
    the scheduler defers — but its forced-admission round must fire at
    max_wait_ms, not at the second arrival."""
    requests = [
        Request(request_id=0, arrival_ms=0.0, prompt_tokens=8, output_tokens=2, slo_ms=1e6),
        Request(request_id=1, arrival_ms=10_000.0, prompt_tokens=8, output_tokens=2, slo_ms=1e6),
    ]
    sim = ServingSimulator(
        TINY_DENSE, scheduler=MaxBatchScheduler(max_wait_ms=500.0), arch="a100",
        max_batch_size=4,
    )
    report = sim.simulate(requests)
    first = next(m for m in report.requests if m.request_id == 0)
    assert first.scheduled_ms == 500.0  # the forced flush, not the 10 s arrival


def test_simulator_rejects_overadmitting_scheduler():
    class Greedy(Scheduler):
        name = "greedy"

        def select(self, waiting, running, free_slots, now_ms, more_arrivals):
            return list(waiting)  # ignores free_slots

    workload = steady_workload(num_requests=8, rate_rps=1000.0, seed=0)
    sim = ServingSimulator(
        TINY_DENSE, scheduler=Greedy(), arch="a100", max_batch_size=2,
        step_model=shared_step_model("a100"),
    )
    with pytest.raises(RuntimeError):
        sim.simulate(workload)


# --------------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------------- #
def test_percentile_interpolates():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    assert percentile([], 99) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def _metrics(rid=0, finish=100.0):
    return RequestMetrics(
        request_id=rid,
        arrival_ms=0.0,
        scheduled_ms=1.0,
        first_token_ms=2.0,
        finish_ms=finish,
        prompt_tokens=16,
        output_tokens=8,
        slo_ms=50.0,
    )


# --------------------------------------------------------------------------- #
# KV-cache memory model
# --------------------------------------------------------------------------- #
def test_kv_footprints_scale_with_model_shape():
    per_token = kv_bytes_per_token(TINY_DENSE)
    # 2 (K and V) x layers x heads x head_dim x fp16.
    assert per_token == 2.0 * 2 * 4 * 64 * 2.0
    sharded = kv_bytes_per_token(dataclasses.replace(TINY_DENSE, tensor_parallel=4))
    assert sharded == per_token / 4

    weights = weight_bytes(TINY_DENSE)
    assert weights > 0
    assert weight_bytes(dataclasses.replace(TINY_DENSE, tensor_parallel=2)) == weights / 2
    with pytest.raises(KeyError):
        weight_bytes(dataclasses.replace(TINY_DENSE, weight_dtype="fp13"))


def test_kv_budget_blocks_derivation_and_errors():
    budget = kv_budget_blocks(TINY_DENSE, "a100")
    usable = 80.0 * 1e9 * 0.9 - weight_bytes(TINY_DENSE)
    assert budget == int(usable // (kv_bytes_per_token(TINY_DENSE) * 16))
    # Halving the utilization headroom shrinks the budget.
    assert kv_budget_blocks(TINY_DENSE, "a100", hbm_utilization=0.45) < budget
    with pytest.raises(ValueError):
        kv_budget_blocks(TINY_DENSE, "a100", block_tokens=0)
    with pytest.raises(ValueError):
        kv_budget_blocks(TINY_DENSE, "a100", hbm_utilization=1.5)
    # A model whose weights alone exceed usable HBM is unservable.
    giant = dataclasses.replace(
        TINY_DENSE, hidden_size=65536, num_layers=200, tensor_parallel=1
    )
    with pytest.raises(ValueError):
        kv_budget_blocks(giant, "a100")


def test_kv_block_manager_accounting():
    manager = KvBlockManager(total_blocks=10, block_tokens=16)
    assert manager.blocks_for(1) == 1
    assert manager.blocks_for(16) == 1
    assert manager.blocks_for(17) == 2

    assert manager.allocate(7, 33) == 3  # three blocks taken
    assert manager.used_blocks == 3 and manager.free_blocks == 7
    assert manager.allocate(7, 34) == 0  # same block count: no growth
    assert manager.allocate(7, 49) == 1  # crosses a block boundary
    assert manager.held(7) == 4
    assert manager.fits(8, 96) and not manager.fits(8, 97)
    with pytest.raises(RuntimeError):
        manager.allocate(8, 112)  # 7 blocks needed, 6 free
    assert manager.peak_used_blocks == 4
    assert manager.release(7) == 4
    assert manager.free_blocks == 10 and manager.release(7) == 0

    view = manager.view()
    assert view.free_blocks == 10 and view.total_blocks == 10
    assert view.blocks_for(17) == 2
    with pytest.raises(ValueError):
        KvBlockManager(total_blocks=0)


def _pressure_workload(seed=3):
    return make_workload(
        "memory-pressure",
        num_requests=12,
        rate_rps=2000.0,
        mean_prompt_tokens=16,
        mean_output_tokens=96,
        max_prompt_tokens=64,
        max_output_tokens=192,
        seed=seed,
    )


def _pressure_budget(workload, slack=2.0):
    per_request = max(
        blocks_for_tokens(r.prompt_tokens + r.output_tokens) for r in workload
    )
    return int(per_request * slack)


def test_memory_pressure_workload_is_seeded_and_capped():
    first = _pressure_workload()
    assert first == _pressure_workload()
    assert first != _pressure_workload(seed=4)
    assert all(r.prompt_tokens <= 64 and r.output_tokens <= 192 for r in first)


@pytest.mark.parametrize("scheduler", ["fcfs", "slo", "max-batch", "memory-aware"])
def test_preemption_under_memory_pressure(scheduler):
    """A tight KV budget must force preemptions, stay within the pool, be
    deterministic, and still complete every request."""
    workload = _pressure_workload()
    sim = ServingSimulator(
        TINY_DENSE,
        scheduler=scheduler,
        arch="a100",
        max_batch_size=8,
        kv_budget_blocks=_pressure_budget(workload),
    )
    report = sim.simulate(workload, workload="memory-pressure")
    assert report.preemptions > 0
    assert 0.0 < report.kv_peak_utilization <= 1.0
    assert 0.0 < report.mean_kv_utilization <= 1.0
    assert report.num_requests == len(workload)
    assert report.digest() == sim.simulate(workload, workload="memory-pressure").digest()
    for metrics in report.requests:
        assert metrics.finish_ms > metrics.first_token_ms > metrics.arrival_ms


def test_infinite_kv_budget_matches_memoryless_simulator():
    """The acceptance gate: with an effectively infinite budget, every
    scheduler's digest is bit-identical to the pre-KV simulator (the
    kv_memory=False path) on the existing workload suite."""
    generators = {
        "steady": lambda: steady_workload(
            num_requests=10, rate_rps=50.0, mean_prompt_tokens=64,
            mean_output_tokens=12, seed=5,
        ),
        "bursty": lambda: bursty_workload(
            num_requests=10, burst_size=4, mean_prompt_tokens=64,
            mean_output_tokens=12, seed=5,
        ),
        "heavy-tail": lambda: heavy_tail_workload(
            num_requests=10, rate_rps=50.0, mean_prompt_tokens=64,
            min_output_tokens=4, max_output_tokens=64, seed=5,
        ),
    }
    for name, generator in generators.items():
        workload = generator()
        for scheduler in sorted(SCHEDULERS):
            def run(**kv_kwargs):
                sim = ServingSimulator(
                    TINY_DENSE, scheduler=scheduler, arch="a100",
                    max_batch_size=4, **kv_kwargs,
                )
                return sim.simulate(workload, workload=name)

            memoryless = run(kv_memory=False)
            unconstrained = run(kv_budget_blocks=10**9)
            assert memoryless.digest() == unconstrained.digest(), (name, scheduler)
            assert memoryless.preemptions == 0
            assert unconstrained.preemptions == 0


def test_request_larger_than_budget_is_rejected():
    requests = [
        Request(request_id=0, arrival_ms=0.0, prompt_tokens=512, output_tokens=128, slo_ms=1e6)
    ]
    sim = ServingSimulator(TINY_DENSE, arch="a100", kv_budget_blocks=16)
    with pytest.raises(ValueError):
        sim.simulate(requests)


def test_admission_is_blocked_until_blocks_free():
    """Two requests that cannot coexist: the second must wait for the first
    to finish and release its blocks, not share the pool."""
    requests = [
        Request(request_id=0, arrival_ms=0.0, prompt_tokens=64, output_tokens=32, slo_ms=1e6),
        Request(request_id=1, arrival_ms=1.0, prompt_tokens=64, output_tokens=32, slo_ms=1e6),
    ]
    # Each request peaks at ceil(96/16) = 6 blocks; a 7-block pool holds one.
    sim = ServingSimulator(TINY_DENSE, arch="a100", max_batch_size=4, kv_budget_blocks=7)
    report = sim.simulate(requests)
    assert report.num_requests == 2
    first = next(m for m in report.requests if m.request_id == 0)
    second = next(m for m in report.requests if m.request_id == 1)
    # Strictly serial: the second is scheduled only after the first finished.
    assert second.scheduled_ms >= first.finish_ms
    assert report.mean_batch_size == 1.0
    assert report.preemptions == 0  # admission control, not preemption


# --------------------------------------------------------------------------- #
# Memory-aware scheduling hooks
# --------------------------------------------------------------------------- #
def _view(free, total=1000, block_tokens=16):
    return KvMemoryView(block_tokens=block_tokens, total_blocks=total, free_blocks=free)


def _running(rid, admitted, blocks, slo=10_000.0, done=4):
    return RunningInfo(
        request=_request(rid, arrival=0.0, slo=slo),
        admitted_ms=admitted,
        tokens_done=done,
        blocks_held=blocks,
    )


def test_base_select_memory_keeps_the_fitting_prefix():
    scheduler = FcfsScheduler()
    waiting = [
        Request(request_id=0, arrival_ms=0.0, prompt_tokens=31, output_tokens=8, slo_ms=1e4),
        Request(request_id=1, arrival_ms=1.0, prompt_tokens=160, output_tokens=8, slo_ms=1e4),
        Request(request_id=2, arrival_ms=2.0, prompt_tokens=15, output_tokens=8, slo_ms=1e4),
    ]
    # 2 + 11 + 1 admission blocks; 8 free: the 11-block request does not fit
    # and, as a *prefix* policy, nothing behind it may jump the queue.
    picked = FcfsScheduler().select_memory(
        waiting, running=0, free_slots=3, now_ms=5.0, more_arrivals=False,
        memory=_view(free=8),
    )
    assert [r.request_id for r in picked] == [0]
    # memory=None is the exact pre-KV path.
    assert scheduler.select_memory(
        waiting, 0, 3, 5.0, False, memory=None
    ) == scheduler.select(waiting, 0, 3, 5.0, False)


def test_memory_aware_scheduler_packs_smallest_first():
    waiting = [
        Request(request_id=0, arrival_ms=0.0, prompt_tokens=160, output_tokens=8, slo_ms=1e4),
        Request(request_id=1, arrival_ms=1.0, prompt_tokens=15, output_tokens=8, slo_ms=1e4),
        Request(request_id=2, arrival_ms=2.0, prompt_tokens=31, output_tokens=8, slo_ms=1e4),
    ]
    picked = MemoryAwareScheduler().select_memory(
        waiting, running=0, free_slots=3, now_ms=5.0, more_arrivals=False,
        memory=_view(free=8),
    )
    # Unlike FCFS, the big head-of-line request is skipped and the two small
    # ones are packed (1 + 2 admission blocks <= 8 free).
    assert [r.request_id for r in picked] == [1, 2]
    # Without a memory view the policy degrades to FCFS.
    assert [
        r.request_id
        for r in MemoryAwareScheduler().select_memory(
            waiting, 0, 2, 5.0, False, memory=None
        )
    ] == [0, 1]


def test_memory_aware_scheduler_ages_starving_requests():
    scheduler = MemoryAwareScheduler(max_wait_ms=100.0)
    waiting = [
        Request(request_id=0, arrival_ms=0.0, prompt_tokens=160, output_tokens=8, slo_ms=1e4),
        Request(request_id=1, arrival_ms=1.0, prompt_tokens=15, output_tokens=8, slo_ms=1e4),
    ]
    # Aged past max_wait_ms, the big request becomes head-of-line: it does
    # not fit 8 free blocks and nothing may jump past it any more.
    assert scheduler.select_memory(
        waiting, 0, 2, now_ms=200.0, more_arrivals=False, memory=_view(free=8)
    ) == []
    # With enough free blocks it is admitted first, in arrival order.
    picked = scheduler.select_memory(
        waiting, 0, 2, now_ms=200.0, more_arrivals=False, memory=_view(free=16)
    )
    assert [r.request_id for r in picked] == [0, 1]


def test_preempt_order_policies():
    infos = [
        _running(0, admitted=10.0, blocks=4, slo=50_000.0),
        _running(1, admitted=20.0, blocks=9, slo=30_000.0),
        _running(2, admitted=30.0, blocks=2, slo=1_000.0),
    ]
    # Default (FCFS/max-batch): newest admission first — vLLM's LIFO.
    assert [s.request.request_id for s in FcfsScheduler().preempt_order(infos, 40.0)] \
        == [2, 1, 0]
    # SLO: slackest deadline first, tight deadlines protected.
    assert [s.request.request_id for s in SloScheduler().preempt_order(infos, 40.0)] \
        == [0, 1, 2]
    # Memory-aware: largest holder first, but the longest resident (request
    # 0) is always the last resort so one request always makes progress.
    assert [s.request.request_id for s in MemoryAwareScheduler().preempt_order(infos, 40.0)] \
        == [1, 2, 0]


# --------------------------------------------------------------------------- #
# Routers
# --------------------------------------------------------------------------- #
def _snapshot(rid, waiting=0, running=0, free=100, total=100, reserved=0, preempt=0):
    return ReplicaSnapshot(
        replica_id=rid,
        now_ms=0.0,
        waiting=waiting,
        running=running,
        max_batch_size=8,
        kv_total_blocks=total,
        kv_free_blocks=free,
        kv_reserved_blocks=reserved,
        preemptions=preempt,
        finished=0,
    )


def test_round_robin_cycles_and_resets():
    router = RoundRobinRouter()
    router.reset(3)
    snaps = [_snapshot(0), _snapshot(1), _snapshot(2)]
    request = _request(0, 0.0)
    assert [router.route(request, snaps) for _ in range(5)] == [0, 1, 2, 0, 1]
    router.reset(3)
    assert router.route(request, snaps) == 0  # cursor rewound


def test_least_loaded_picks_min_outstanding():
    router = LeastLoadedRouter()
    snaps = [_snapshot(0, waiting=3, running=2), _snapshot(1, waiting=1, running=2),
             _snapshot(2, waiting=2, running=2)]
    assert router.route(_request(0, 0.0), snaps) == 1
    # Ties break on replica id.
    tied = [_snapshot(0, waiting=1), _snapshot(1, waiting=1)]
    assert router.route(_request(0, 0.0), tied) == 0


def test_kv_aware_ranks_by_unreserved_blocks():
    router = KvAwareRouter()
    # Replica 1 looks free *now* but its backlog has reserved nearly the
    # whole pool; replica 0 is the safer target.
    snaps = [
        _snapshot(0, free=40, total=100, reserved=50),
        _snapshot(1, free=90, total=100, reserved=95),
    ]
    assert router.route(_request(0, 0.0), snaps) == 0
    # Unreserved ties fall back to fewest preemptions.
    tied = [
        _snapshot(0, free=50, total=100, reserved=60, preempt=4),
        _snapshot(1, free=50, total=100, reserved=60, preempt=1),
    ]
    assert router.route(_request(0, 0.0), tied) == 1
    # Without any KV budget the policy degrades to least-loaded.
    memoryless = [
        _snapshot(0, waiting=5, free=0, total=0),
        _snapshot(1, waiting=2, free=0, total=0),
    ]
    assert router.route(_request(0, 0.0), memoryless) == 1


def test_power_of_two_is_seeded_and_deterministic():
    request = _request(0, 0.0)
    snaps = [_snapshot(i, waiting=i) for i in range(8)]

    def trace(seed):
        router = PowerOfTwoRouter()
        router.reset(8, seed=seed)
        return [router.route(request, snaps) for _ in range(20)]

    assert trace(0) == trace(0)  # reset reproduces the stream
    assert trace(0) != trace(1)  # and the seed matters
    # Each pick is the less loaded of two sampled replicas, so the heaviest
    # replica (id 7) can only be picked against... nothing heavier: never.
    assert 7 not in trace(0) and 7 not in trace(1)
    # One replica: no sampling, always 0.
    solo = PowerOfTwoRouter()
    solo.reset(1, seed=3)
    assert solo.route(request, [_snapshot(0)]) == 0


def test_get_router_resolves_names_and_instances():
    assert isinstance(get_router("round-robin"), RoundRobinRouter)
    assert set(ROUTERS) == {
        "round-robin", "least-loaded", "kv-aware", "power-of-two-choices",
        "prefix-affinity",
    }
    custom = LeastLoadedRouter()
    assert get_router(custom) is custom
    with pytest.raises(KeyError):
        get_router("random")


def test_request_queue_push_keeps_arrival_order():
    queue = RequestQueue([_request(0, 10.0), _request(2, 30.0)])
    queue.push(_request(3, 40.0))       # in-order append
    queue.push(_request(1, 20.0))       # out-of-order insert
    assert [r.request_id for r in queue] == [0, 1, 2, 3]
    assert [r.request_id for r in queue.pop_arrived(25.0)] == [0, 1]


# --------------------------------------------------------------------------- #
# Cluster simulator
# --------------------------------------------------------------------------- #
def _cluster_workloads():
    return {
        "steady": steady_workload(
            num_requests=12, rate_rps=50.0, mean_prompt_tokens=64,
            mean_output_tokens=12, seed=5,
        ),
        "bursty": bursty_workload(
            num_requests=12, burst_size=4, mean_prompt_tokens=64,
            mean_output_tokens=12, seed=5,
        ),
    }


@pytest.mark.parametrize("router", sorted(ROUTERS))
def test_single_replica_cluster_is_bit_identical_to_bare_simulator(router):
    """The equivalence gate: a 1-replica cluster's digest equals the bare
    ServingSimulator's, for every routing policy (same shape as the
    infinite-KV-budget check)."""
    for name, workload in _cluster_workloads().items():
        for scheduler in ("fcfs", "max-batch"):
            bare = ServingSimulator(
                TINY_DENSE, scheduler=scheduler, arch="a100", max_batch_size=4
            ).simulate(workload, workload=name)
            cluster = ClusterSimulator(
                TINY_DENSE, replicas=1, router=router, scheduler=scheduler,
                arch="a100", max_batch_size=4,
            ).simulate(workload, workload=name)
            assert cluster.digest() == bare.digest(), (name, scheduler)
            assert cluster.num_requests == bare.num_requests
            assert set(cluster.assignments.values()) == {0}


@pytest.mark.parametrize("router", sorted(ROUTERS))
def test_cluster_double_run_is_digest_stable(router):
    """N=4 fleet, bursty traffic: two runs of one ClusterSimulator (and a
    freshly built twin) are bit-identical."""
    workload = bursty_workload(
        num_requests=32, burst_size=8, mean_prompt_tokens=64,
        mean_output_tokens=24, seed=9,
    )

    def build():
        return ClusterSimulator(
            TINY_DENSE, replicas=4, router=router, scheduler="fcfs",
            arch="a100", max_batch_size=4, seed=7,
        )

    cluster = build()
    first = cluster.simulate(workload, workload="bursty")
    second = cluster.simulate(workload, workload="bursty")
    third = build().simulate(workload, workload="bursty")
    assert first.digest() == second.digest() == third.digest()
    assert first.num_requests == len(workload)
    assert first.num_replicas == 4 and len(first.replicas) == 4
    assert sorted(first.assignments) == [r.request_id for r in workload]
    assert sum(r.num_requests for r in first.replicas) == len(workload)
    assert 0.0 <= first.slo_attainment <= 1.0
    assert first.load_imbalance >= 0.0
    # The fleet rollups agree with the merged per-request records.
    merged = first.requests
    assert [m.request_id for m in merged] == sorted(m.request_id for m in merged)
    assert first.total_output_tokens == sum(m.output_tokens for m in merged)


def test_kv_aware_routing_preempts_less_than_round_robin():
    """Under KV pressure, routing by reserved blocks must beat footprint-
    blind round-robin on fleet preemptions, strictly."""
    workload = make_workload(
        "memory-pressure", num_requests=48, rate_rps=800.0,
        mean_prompt_tokens=64, mean_output_tokens=160,
        max_prompt_tokens=256, max_output_tokens=320, seed=2,
    )
    budget = int(
        1.3 * max(blocks_for_tokens(r.prompt_tokens + r.output_tokens) for r in workload)
    )

    def run(router):
        cluster = ClusterSimulator(
            TINY_DENSE, replicas=2, router=router, scheduler="fcfs",
            arch="a100", max_batch_size=8, kv_budget_blocks=budget,
        )
        return cluster.simulate(workload, workload="memory-pressure")

    aware = run("kv-aware")
    blind = run("round-robin")
    assert aware.num_requests == blind.num_requests == len(workload)
    assert blind.preemptions > 0
    assert aware.preemptions < blind.preemptions
    for report in (aware, blind):
        assert 0.0 <= report.kv_utilization_spread <= 1.0


def test_cluster_per_replica_budgets_and_validation():
    with pytest.raises(ValueError):
        ClusterSimulator(TINY_DENSE, replicas=0, arch="a100")
    with pytest.raises(ValueError):
        ClusterSimulator(
            TINY_DENSE, replicas=2, arch="a100", kv_budget_blocks=[16, 16, 16]
        )
    with pytest.raises(KeyError):
        ClusterSimulator(TINY_DENSE, replicas=2, router="random", arch="a100")
    # A heterogeneous fleet: each replica gets its own pool.
    cluster = ClusterSimulator(
        TINY_DENSE, replicas=2, arch="a100", max_batch_size=4,
        kv_budget_blocks=[64, 128],
    )
    assert [sim.kv_budget_blocks for sim in cluster.replicas] == [64, 128]


def test_simulate_cluster_wrapper_matches_class():
    workload = steady_workload(
        num_requests=8, rate_rps=50.0, mean_prompt_tokens=64,
        mean_output_tokens=8, seed=1,
    )
    direct = ClusterSimulator(
        TINY_DENSE, replicas=2, router="least-loaded", arch="a100", max_batch_size=4
    ).simulate(workload, workload="steady")
    wrapped = simulate_cluster(
        TINY_DENSE, workload, replicas=2, router="least-loaded", arch="a100",
        max_batch_size=4, workload="steady",
    )
    assert wrapped.digest() == direct.digest()


def test_report_digest_is_content_sensitive():
    def report(finish):
        return ServeReport(
            model="m", backend="hexcute", scheduler="fcfs", workload="steady",
            arch="A100-PCIe-80GB", num_requests=1, total_output_tokens=8,
            duration_ms=finish, steps=8, mean_batch_size=1.0,
            mean_queue_depth=0.0, max_queue_depth=0, requests=[_metrics(finish=finish)],
        )

    assert report(100.0).digest() == report(100.0).digest()
    assert report(100.0).digest() != report(101.0).digest()
    assert report(100.0).requests[0].slo_met is False  # 100 ms > 50 ms SLO
    assert report(100.0).slo_attainment == 0.0
