"""Tests for the layout algebra: coalesce, composition, complement, inverse,
divide and product — including the worked examples from the paper appendix."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.layout import (
    Layout,
    blocked_product,
    coalesce,
    complement,
    composition,
    left_inverse,
    logical_divide,
    logical_product,
    make_layout,
    raked_product,
    right_inverse,
    zipped_divide,
)
from repro.utils.inttuple import crd2idx


def test_coalesce_merges_contiguous_modes():
    layout = Layout((2, (1, 6)), (1, (7, 2)))
    merged = coalesce(layout)
    assert merged.size() == layout.size()
    for i in range(layout.size()):
        assert merged(i) == layout(i)


def test_coalesce_drops_size_one_modes():
    layout = Layout((4, 1, 8), (1, 77, 4))
    assert coalesce(layout).shape == 32


def test_composition_matches_function_composition():
    a = Layout((6, 2), (8, 2))
    b = Layout((4, 3), (3, 1))
    c = composition(a, b)
    for i in range(b.size()):
        assert c(i) == a(b(i))


def test_composition_with_tiler_by_mode():
    a = Layout((8, 8))
    c = composition(a, (Layout(4, 2), Layout(2, 4)))
    assert c.rank() == 2
    assert c(1, 0) == a(2, 0)
    assert c(0, 1) == a(0, 4)


def test_composition_stride_zero():
    a = Layout((8, 8))
    c = composition(a, Layout(4, 0))
    assert all(c(i) == 0 for i in range(4))


def test_complement_covers_rest_of_space():
    layout = Layout(4, 2)
    comp = complement(layout, 24)
    covered = {layout(i) for i in range(layout.size())}
    rest = {comp(i) for i in range(comp.size())}
    # Together they tile [0, 24) without overlap.
    combined = make_layout(layout, comp)
    image = sorted(combined(i) for i in range(combined.size()))
    assert image == list(range(24))
    assert covered & rest == {0}


def test_right_inverse_property():
    layout = Layout((4, 8), (8, 1))
    inverse = right_inverse(layout)
    for i in range(inverse.size()):
        assert layout(inverse(i)) == i


def test_left_inverse_property():
    layout = Layout((4, 8), (8, 1))
    inverse = left_inverse(layout)
    for i in range(layout.size()):
        assert inverse(layout(i)) == i


def test_ldmatrix_composite_from_appendix_c():
    # Appendix C: g o q^-1 for the ldmatrix fragment maps (17,5) -> 337.
    q = Layout(((4, 8), (2, 4)), ((64, 1), (32, 8)))
    g_restricted = Layout(((4, 8), (2, 2, 2)), ((32, 1), (16, 8, 256)))
    composite = composition(g_restricted, right_inverse(q))
    idx = crd2idx((17, 5), (32, 8))
    assert composite(idx) == 337


def test_logical_divide_tiles_domain():
    layout = Layout((8, 8))
    divided = logical_divide(layout, (Layout(2), Layout(4)))
    # Mode 0 of each dimension iterates within a tile, mode 1 across tiles.
    assert divided.size() == layout.size()
    values = sorted(divided(i) for i in range(divided.size()))
    assert values == list(range(64))


def test_zipped_divide_groups_tile_first():
    layout = Layout((8, 8))
    zipped = zipped_divide(layout, (Layout(2), Layout(4)))
    assert zipped[0].size() == 8      # 2x4 tile
    assert zipped[1].size() == 8      # 4x2 grid of tiles


def test_logical_product_replicates():
    tile = Layout(4, 1)
    prod = logical_product(tile, Layout(3))
    assert prod.size() == 12
    image = sorted(prod(i) for i in range(12))
    assert image == list(range(12))


def test_blocked_and_raked_products_are_bijections():
    a = Layout((2, 2))
    b = Layout((3, 3))
    for prod in (blocked_product(a, b), raked_product(a, b)):
        image = sorted(prod(i) for i in range(prod.size()))
        assert image == list(range(36))


@st.composite
def simple_layouts(draw):
    rank = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(draw(st.integers(min_value=1, max_value=4)) for _ in range(rank))
    order = draw(st.permutations(range(rank)))
    strides = [0] * rank
    running = 1
    for dim in order:
        strides[dim] = running
        running *= shape[dim]
    return Layout(shape, tuple(strides))


@settings(max_examples=50, deadline=None)
@given(simple_layouts())
def test_right_inverse_property_random(layout):
    inverse = right_inverse(layout)
    for i in range(inverse.size()):
        assert layout(inverse(i)) == i


@settings(max_examples=50, deadline=None)
@given(simple_layouts(), simple_layouts())
def test_composition_property_random(a, b):
    # Compose b restricted so its codomain fits a's domain.  Composition is
    # only defined when the shapes satisfy CuTe's divisibility conditions, so
    # indivisible pairs are skipped rather than treated as failures.
    if b.cosize() > a.size():
        return
    try:
        c = composition(a, b)
    except ValueError:
        return
    for i in range(b.size()):
        assert c(i) == a(b(i))


@settings(max_examples=50, deadline=None)
@given(simple_layouts())
def test_complement_makes_compact_cover(layout):
    total = layout.cosize()
    comp = complement(layout, total)
    combined = make_layout(layout, comp)
    image = sorted(combined(i) for i in range(combined.size()))
    assert len(set(image)) == len(image)
    assert image[0] == 0
