"""The integer-set relation oracle (``repro.layout.relation``).

Two jobs:

1. **Semantics of the relation view itself** — hand-checkable cases for
   construction, composition, inverse, greedy complement, conversion and
   the conflict-degree model.

2. **Property-based cross-checks of the closed-form algebra** — every
   memoized operation in ``repro.layout.algebra`` (coalesce, composition,
   complement, right_inverse, left_inverse) and the enumerated
   ``bank_conflict_factor`` is compared against its set-theoretic
   definition on hundreds of seeded random layouts (see
   ``tests/strategies.py``), plus the metamorphic algebra laws
   (associativity, inverse-then-compose = identity, complement
   disjointness/cover) and the analytic predicates backing the smem
   solver's swizzle pruning (``swizzle_window_key``, injectivity).
"""

import pytest

from repro.layout import (
    ComposedLayout,
    Layout,
    LayoutRelation,
    Swizzle,
    candidate_swizzles,
    coalesce,
    complement,
    composition,
    layout_is_injective,
    left_inverse,
    make_layout,
    right_inverse,
    swizzle_window_key,
)
from repro.synthesis.smem_solver import SmemBankParams, bank_conflict_factor
from repro.utils.memo import cache_stats

from strategies import LayoutSampler, layout_cases

# Every randomized cross-check below runs at least this many generated
# cases (the acceptance bar of the oracle suite).
CASES = 300


def relation_of(layout, domain_size=None):
    return LayoutRelation.from_layout(layout, domain_size=domain_size)


# --------------------------------------------------------------------------- #
# Relation semantics (hand cases)
# --------------------------------------------------------------------------- #
def test_from_layout_enumerates_the_graph():
    rel = relation_of(Layout((2, 3), (3, 1)))
    assert rel.pairs == ((0, 0), (1, 3), (2, 1), (3, 4), (4, 2), (5, 5))
    assert rel.domain() == (0, 1, 2, 3, 4, 5)
    assert rel.image() == (0, 1, 2, 3, 4, 5)
    assert rel.is_function() and rel.is_injective()


def test_identity_is_neutral_for_compose():
    rel = relation_of(Layout((4, 2), (1, 8)))
    n = len(rel)
    assert rel.compose(LayoutRelation.identity(n)) == rel
    assert LayoutRelation.identity(16).compose(rel) == rel


def test_compose_matches_pointwise_function_composition():
    inner = Layout(4, 2)          # i -> 2i
    outer = Layout(8, 3)          # j -> 3j
    composed = relation_of(outer).compose(relation_of(inner))
    assert composed == LayoutRelation((i, 6 * i) for i in range(4))


def test_compose_is_empty_off_the_image():
    # outer is only defined on [0, 2); inner's larger outputs drop out.
    inner = relation_of(Layout(4, 1))
    outer = relation_of(Layout(2, 5))
    assert outer.compose(inner).pairs == ((0, 0), (1, 5))


def test_inverse_on_image_swaps_pairs():
    rel = relation_of(Layout((2, 2), (4, 1)))
    inv = rel.inverse_on_image()
    assert set(inv.pairs) == {(y, x) for x, y in rel.pairs}
    assert inv.compose(rel) == LayoutRelation.identity(4)


def test_multivalued_relation_predicates():
    rel = LayoutRelation([(0, 1), (0, 2), (1, 3)])
    assert not rel.is_function()
    assert rel.is_injective()  # no output shared between distinct inputs
    collide = LayoutRelation([(0, 5), (1, 5)])
    assert collide.is_function() is True and not collide.is_injective()


def test_restrict_domain():
    rel = relation_of(Layout(6, 2))
    assert rel.restrict_domain([1, 3]).pairs == ((1, 2), (3, 6))


def test_complement_in_matches_cute_example():
    # complement(4:2, 24) = (2,3):(1,8) with image {0,1,8,9,16,17}.
    greedy = relation_of(Layout(4, 2)).complement_in(24)
    assert greedy.image() == (0, 1, 8, 9, 16, 17)
    closed = complement(Layout(4, 2), 24)
    assert tuple(sorted(set(closed.all_indices()))) == greedy.image()


def test_complement_in_raises_on_sumset_collision():
    rel = LayoutRelation(enumerate([0, 2, 3]))
    with pytest.raises(ValueError, match="covered twice"):
        rel.complement_in(6)


def test_to_layout_roundtrip_hand_case():
    layout = Layout((4, 8), (8, 1))
    recovered = relation_of(layout).to_layout()
    assert [recovered(i) for i in range(32)] == layout.all_indices()


def test_to_layout_rejects_non_affine_offsets():
    # [0, 1, 2, 4] cannot be written as shape:stride (the step changes
    # mid-sequence without a mode boundary).
    with pytest.raises(ValueError, match="do not factor"):
        LayoutRelation(enumerate([0, 1, 2, 4])).to_layout()
    # ...whereas [0, 1, 3, 4] can: it is exactly (2,2):(1,3).
    recovered = LayoutRelation(enumerate([0, 1, 3, 4])).to_layout()
    assert [recovered(i) for i in range(4)] == [0, 1, 3, 4]


def test_to_layout_rejects_multivalued_or_sparse_domains():
    with pytest.raises(ValueError, match="single-valued"):
        LayoutRelation([(0, 0), (0, 1), (1, 2), (2, 3)]).to_layout()
    with pytest.raises(ValueError, match="compact"):
        LayoutRelation([(0, 0), (2, 1)]).to_layout()


def test_from_access_builds_slot_indexed_pairs():
    layout = Layout((4, 4), (1, 4))
    coords = [(1, 0), (1, 0), (0, 2)]
    rel = LayoutRelation.from_access(layout, coords)
    assert rel.pairs == ((0, 1), (1, 1), (2, 8))


def test_bank_conflict_degree_hand_cases():
    # 32 threads on 32 consecutive fp32 words: one access per bank.
    spread = LayoutRelation.identity(32)
    assert spread.bank_conflict_degree(32, 4, 32) == 1.0
    # 32 threads on one column of a 32-wide fp32 row-major tile: every
    # access hits bank 0 in a different 128 B line -> 32-way conflict.
    column = LayoutRelation(enumerate(32 * t for t in range(32)))
    assert column.bank_conflict_degree(32, 4, 32, access_bytes=4) == 32.0
    # Full broadcast: one address, one bank, one line.
    broadcast = LayoutRelation((t, 0) for t in range(32))
    assert broadcast.bank_conflict_degree(32, 4, 32) == 1.0
    # Unbanked scratchpad never conflicts.
    assert column.bank_conflict_degree(1, 128, 32) == 1.0


def test_relation_dunder_plumbing():
    rel = relation_of(Layout(3, 2))
    assert len(rel) == 3 and (1, 2) in rel and list(rel) == [(0, 0), (1, 2), (2, 4)]
    assert rel == LayoutRelation([(2, 4), (0, 0), (1, 2)])  # order-insensitive
    assert hash(rel) == hash(LayoutRelation(rel.pairs))
    assert "LayoutRelation" in repr(rel)
    with pytest.raises(ValueError, match="non-negative"):
        LayoutRelation([(-1, 0)])


# --------------------------------------------------------------------------- #
# Randomized oracle: coalesce
# --------------------------------------------------------------------------- #
def test_coalesce_oracle_preserves_the_relation():
    for layout in layout_cases(seed=101, count=CASES + 20):
        flattened = coalesce(layout)
        assert relation_of(flattened) == relation_of(layout), layout
        assert flattened.size() == layout.size()


def test_coalesce_is_idempotent():
    for layout in layout_cases(seed=102, count=CASES):
        once = coalesce(layout)
        assert coalesce(once) == once, layout


def test_to_layout_roundtrips_random_compact_layouts():
    checked = 0
    for layout in layout_cases(seed=103, count=CASES + 50, style="permuted"):
        rel = relation_of(layout)
        recovered = rel.to_layout()
        assert relation_of(recovered) == rel, layout
        checked += 1
    assert checked >= CASES


# --------------------------------------------------------------------------- #
# Randomized oracle: composition
# --------------------------------------------------------------------------- #
def test_composition_oracle_matches_relational_composition():
    sampler = LayoutSampler(seed=201)
    for _ in range(CASES + 20):
        outer = sampler.pow2_layout()
        inner = sampler.pow2_tiler(outer.size())
        composed = composition(outer, inner)
        domain = max(outer.size(), inner.cosize())
        oracle = relation_of(outer, domain_size=domain).compose(
            relation_of(inner))
        assert relation_of(composed) == oracle, (outer, inner)


def test_composition_is_associative():
    sampler = LayoutSampler(seed=202)
    for _ in range(CASES + 20):
        a = sampler.pow2_layout()
        b = sampler.pow2_tiler(a.size())
        c = sampler.pow2_tiler(b.size())
        left = composition(composition(a, b), c)
        right = composition(a, composition(b, c))
        assert relation_of(left) == relation_of(right), (a, b, c)


# --------------------------------------------------------------------------- #
# Randomized oracle: complement
# --------------------------------------------------------------------------- #
def test_complement_oracle_matches_greedy_cover():
    sampler = LayoutSampler(seed=301)
    for _ in range(CASES + 20):
        layout, cover = sampler.complementable_layout()
        closed = complement(layout, cover)
        greedy = relation_of(layout).complement_in(cover)
        assert tuple(sorted(set(closed.all_indices()))) == greedy.image(), (
            layout, cover)


def test_complement_disjointness_and_cover_law():
    sampler = LayoutSampler(seed=302)
    for _ in range(CASES + 20):
        layout, cover = sampler.complementable_layout()
        rest = complement(layout, cover)
        combined = relation_of(make_layout(layout, rest))
        # (layout, complement) tiles [0, cover): injective and onto.
        assert combined.is_injective(), (layout, cover)
        assert combined.image() == tuple(range(cover)), (layout, cover)


# --------------------------------------------------------------------------- #
# Randomized oracle: inverses
# --------------------------------------------------------------------------- #
def test_right_inverse_oracle_identity_on_image():
    checked = 0
    for layout in layout_cases(seed=401, count=CASES + 60):
        inverse = right_inverse(layout)
        if inverse.size() == 0:
            continue
        domain = max(layout.size(), inverse.cosize())
        composed = relation_of(layout, domain_size=domain).compose(
            relation_of(inverse))
        assert composed == LayoutRelation.identity(inverse.size()), (
            layout, inverse)
        checked += 1
    assert checked >= CASES


def test_right_inverse_of_compact_layouts_is_a_full_inverse():
    for layout in layout_cases(seed=402, count=CASES, style="permuted"):
        inverse = right_inverse(layout)
        assert inverse.size() == layout.size(), layout
        # Both directions are identities for a bijection.
        forward = relation_of(layout).compose(relation_of(inverse))
        backward = relation_of(inverse, domain_size=layout.size()).compose(
            relation_of(layout))
        assert forward == LayoutRelation.identity(layout.size())
        assert backward == LayoutRelation.identity(layout.size())


def test_left_inverse_oracle_identity_on_domain():
    sampler = LayoutSampler(seed=403)
    for _ in range(CASES + 20):
        layout, _cover = sampler.complementable_layout()
        inverse = left_inverse(layout)
        domain = max(layout.cosize(), inverse.size())
        composed = relation_of(inverse, domain_size=domain).compose(
            relation_of(layout))
        assert composed == LayoutRelation.identity(layout.size()), (
            layout, inverse)


# --------------------------------------------------------------------------- #
# Randomized oracle: injectivity
# --------------------------------------------------------------------------- #
def test_is_injective_equivalence():
    """Layout.is_injective (analytic + memoized) ≡ the relation predicate
    ≡ brute force, across every generator style including zero strides."""
    for layout in layout_cases(seed=501, count=CASES + 100):
        image = layout.all_indices()
        brute = len(set(image)) == len(image)
        assert layout.is_injective() == brute, layout
        assert layout_is_injective(layout) == brute, layout
        assert relation_of(layout).is_injective() == brute, layout


def test_analytic_fast_path_is_not_trusted_beyond_its_reach():
    # (3,2):(2,3) fails the sorted-stride sufficient condition (3 <= 2+2)
    # yet is injective — the exact fallback must catch it.
    assert Layout((3, 2), (2, 3)).is_injective()
    # And genuine collisions behind interleaved strides are still found.
    assert not Layout((4, 8), (1, 1)).is_injective()
    assert not Layout((2, 2), (3, 3)).is_injective()


def test_swizzled_injectivity_matches_base():
    sampler = LayoutSampler(seed=502)
    for _ in range(CASES):
        base = sampler.layout()
        swizzled = ComposedLayout(sampler.swizzle(), base)
        expected = base.is_injective()
        assert swizzled.is_injective() == expected, swizzled
        image = swizzled.all_indices()
        assert (len(set(image)) == len(image)) == expected, swizzled


def test_layout_is_injective_is_memoized():
    layout = Layout((7, 3), (3, 1))
    layout.is_injective()
    stats = cache_stats()
    name = "repro.layout.relation.layout_is_injective"
    assert name in stats
    before = stats[name].hits
    Layout((7, 3), (3, 1)).is_injective()  # equal layout, distinct object
    assert cache_stats()[name].hits == before + 1


# --------------------------------------------------------------------------- #
# Randomized oracle: bank conflicts
# --------------------------------------------------------------------------- #
BANKINGS = (SmemBankParams(32, 4), SmemBankParams(64, 4), SmemBankParams(1, 128))


def test_bank_conflict_degree_matches_enumerated_factor():
    sampler = LayoutSampler(seed=601)
    checked = 0
    while checked < CASES + 20:
        base = sampler.layout(style=sampler.rng.choice(("permuted", "strided")))
        if not isinstance(base.shape, tuple):
            continue  # multi-coordinate accesses need a tuple-shaped tile
        layout = ComposedLayout(sampler.swizzle(), base)
        coords = sampler.coords(base, count=32)
        element_bits = sampler.rng.choice((8, 16, 32))
        access_bytes = sampler.rng.choice((4, 8, 16))
        params = sampler.rng.choice(BANKINGS)
        expected = bank_conflict_factor(
            layout, coords, element_bits / 8, access_bytes, params)
        degree = LayoutRelation.from_access(layout, coords).bank_conflict_degree(
            params.banks, params.bank_bytes, element_bits, access_bytes)
        assert degree == pytest.approx(expected, abs=1e-12), (
            base, layout.swizzle, params)
        checked += 1


def test_bank_conflict_degree_defaults_access_to_element_width():
    rel = LayoutRelation(enumerate(32 * t for t in range(32)))
    assert rel.bank_conflict_degree(32, 4, 32) == rel.bank_conflict_degree(
        32, 4, 32, access_bytes=4)


# --------------------------------------------------------------------------- #
# Divisibility error messages (regression: failures must name the layouts)
# --------------------------------------------------------------------------- #
def test_composition_divisibility_error_names_both_layouts():
    # (6,2):(2,16) does not coalesce, and its leading extent 6 is
    # indivisible by the tiler stride 4.
    a = Layout((6, 2), (2, 16))
    b = Layout(4, 4)
    with pytest.raises(ValueError) as err:
        composition(a, b)
    message = str(err.value)
    assert "composition" in message
    assert "(6,2):(2,16)" in message and "4:4" in message


def test_complement_error_names_layout_and_cosize():
    layout = Layout((2, 3), (2, 3))
    with pytest.raises(ValueError) as err:
        complement(layout, 24)
    message = str(err.value)
    assert "(2,3):(2,3)" in message and "24" in message


def test_algebra_errors_are_not_cached():
    # Exceptions are recomputed (lru_cache never stores them): the same
    # call must raise the same error twice in a row.
    for _ in range(2):
        with pytest.raises(ValueError, match="not divisible by layout"):
            composition(Layout((6, 2), (2, 16)), Layout(4, 4))
        with pytest.raises(ValueError, match="not complementable"):
            complement(Layout((2, 3), (2, 3)), 24)


# --------------------------------------------------------------------------- #
# The analytic swizzle-prune predicates
# --------------------------------------------------------------------------- #
def test_swizzle_window_key_identity_cases():
    assert swizzle_window_key(Swizzle(0, 0, 0), 12) == ()
    # Source bits live entirely above the window: restriction is identity.
    assert swizzle_window_key(Swizzle(2, 3, 4), 7) == ()
    # Window truncates the live source bits.
    assert swizzle_window_key(Swizzle(3, 3, 4), 9) == (3, 4, 2)
    assert swizzle_window_key(Swizzle(2, 3, 4), 9) == (3, 4, 2)
    # Fully inside the window: full key.
    assert swizzle_window_key(Swizzle(2, 3, 4), 20) == (3, 4, 2)


def test_swizzle_window_key_soundness():
    """Equal window keys imply pointwise-equal restrictions — the fact the
    smem solver's dedupe prune rests on."""
    sampler = LayoutSampler(seed=701)
    checked = 0
    while checked < CASES:
        s1, s2 = sampler.swizzle(), sampler.swizzle()
        window = sampler.rng.randint(0, 12)
        k1 = swizzle_window_key(s1, window)
        k2 = swizzle_window_key(s2, window)
        if k1 == ():
            assert all(s1(x) == x for x in range(1 << window)), (s1, window)
        if k1 == k2:
            assert all(
                s1(x) == s2(x) for x in range(1 << window)
            ), (s1, s2, window)
            checked += 1


def test_candidate_swizzles_window_pruning():
    full = candidate_swizzles(16, 16, 256)
    assert len(full) > 2
    for window in (0, 4, 8, 10, 14):
        pruned = candidate_swizzles(16, 16, 256, window_bits=window)
        assert pruned[0] == Swizzle(0, 0, 0)
        assert set(pruned) <= set(full)
        keys = [swizzle_window_key(sw, window) for sw in pruned]
        assert len(set(keys)) == len(keys), (window, pruned)
        # Completeness: every dropped candidate's restriction is already
        # represented by a survivor, so pruning loses no behavior.
        surviving = set(keys)
        for sw in full:
            assert swizzle_window_key(sw, window) in surviving, (sw, window)
    # A zero-width window collapses everything onto the identity.
    assert candidate_swizzles(16, 16, 256, window_bits=0) == [Swizzle(0, 0, 0)]
